// The Fig. 2 smart contract: secure storage auditing as a state machine.
//
//   Initialize:  "negotiated" (D,S) -> ACK -> "acked" (S) -> FREEZE ->
//                "freeze" ($D, $S) -> AUDIT, schedule("Chal")
//   Audit loop:  Chal fires  -> randomness beacon -> challenge posted,
//                state PROVE -> "prove"(prf) from S -> schedule("Verify")
//                Verify fires -> V(params, metadata, prf) ? pay S : pay D,
//                cnt++ -> AUDIT (or Closed when cnt == num)
//
// Deviations from the figure are only additions the prose requires: a
// response window with timeout (a silent provider must lose the round), an
// explicit rejection path at ACK (§VI-A's denial-of-service discussion), and
// final settlement of the remaining escrow at expiry.
//
// Memory model: round outcomes are always folded into O(1) aggregate
// counters (passes/fails/timeouts/aborts/retries/gas) the moment they
// settle. The RoundRecord vector is a retention choice on top of that —
// unbounded by default (terms.retained_rounds == 0, the historical behavior
// every test pins), or a bounded ring of the most recent records for
// population-scale runs where a million contracts must stay O(1) each.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "audit/protocol.hpp"
#include "chain/beacon.hpp"
#include "chain/blockchain.hpp"
#include "contract/batch_settlement.hpp"
#include "econ/cost_model.hpp"

namespace dsaudit::contract {

using audit::Challenge;
using audit::PublicKey;
using chain::Address;
using chain::Timestamp;

enum class State {
  Uninitialized,  // ⊥
  Ack,            // waiting for S's acknowledgement
  Freeze,         // waiting for both deposits
  Audit,          // between rounds, next challenge scheduled
  Prove,          // challenge posted, waiting for the proof
  Closed,         // contract expired or terminated
};

enum class RoundOutcome {
  Pass,
  Fail,
  Timeout,
  /// The contract terminated (provider exit / slash) while this round was
  /// in flight: the round never settled and moved no money.
  Aborted,
};

/// Why a contract reached State::Closed.
enum class CloseReason {
  None,          // not closed yet
  Expired,       // all num_audits rounds settled (Fig. 2's natural end)
  Rejected,      // S walked away at ACK
  ProviderExit,  // S invoked the early-exit path mid-contract
  Slashed,       // S crossed the consecutive missed-deadline threshold
};

const char* to_string(CloseReason reason);

struct ContractTerms {
  Address owner;
  Address provider;
  std::uint64_t num_audits = 0;        // the figure's `num`
  Timestamp audit_period_s = 86400;    // challenge cadence (daily by default)
  Timestamp response_window_s = 3600;  // prove deadline after a challenge
  std::uint64_t reward_per_audit = 0;  // micro-payment to S per passed round
  std::uint64_t penalty_per_fail = 0;  // compensation to D per failed round
  std::size_t challenged_chunks = 300; // k (§VI-A default: 95% confidence)
  bool private_proofs = true;          // Eq. 2 (288 B) vs Eq. 1 (96 B)
  /// With deferred settlement: price prove-txs by the calibrated batched
  /// row (econ::AuditCostModel::gas_per_audit_batched at the block's actual
  /// batch size) instead of the flat per-round constant. Off by default so
  /// batched and inline settlement stay bit-identical unless the discount
  /// is explicitly priced in.
  bool batch_gas_discount = false;
  /// Requeue-with-bounded-retry: a round whose proof misses the response
  /// window is re-attempted up to this many times — at the next settlement
  /// boundary in windowed mode, one response window later otherwise —
  /// before it finally settles as Timeout with the penalty. 0 (default)
  /// keeps the original miss-once-lose-once behavior bit-identically.
  std::uint32_t timeout_retry_limit = 0;
  /// Missed-deadline slashing: after this many CONSECUTIVE non-passing
  /// rounds (Timeout or Fail, once retries are exhausted) the contract
  /// terminates early and the provider forfeits the entire remaining
  /// escrow — undelivered rewards and collateral — to the owner.
  /// 0 (default) disables slashing, preserving the original lifecycle.
  std::uint32_t slash_after_consecutive = 0;
  /// Round-record retention: 0 (default) keeps every RoundRecord — the
  /// historical behavior rounds() consumers rely on. N >= 1 keeps only the
  /// N most recent records (the in-flight round always survives), bounding
  /// per-contract memory; the aggregate counters stay exact either way.
  std::size_t retained_rounds = 0;
  /// Same policy for the event log (0 = keep everything).
  std::size_t retained_events = 0;
};

struct RoundRecord {
  std::uint64_t round = 0;
  Challenge challenge;
  Timestamp challenged_at = 0;
  std::optional<Timestamp> proved_at;
  std::size_t proof_bytes = 0;
  /// Measured wall-clock of this round's verification. Telemetry only — gas
  /// settlement uses the calibrated econ::AuditCostModel so that gas_used,
  /// escrow flows and NetworkStats.total_gas are deterministic.
  double verify_ms = 0;
  std::uint64_t gas_used = 0;  // prove-tx gas incl. on-chain verification
  RoundOutcome outcome = RoundOutcome::Timeout;
  std::uint32_t retries = 0;   // timeout re-attempts consumed by this round
};

struct ContractEvent {
  Timestamp at = 0;
  std::string what;  // "negotiated", "acked", "inited", "challenged", ...
};

/// One audit contract between a data owner and a storage provider, driven by
/// the Blockchain's clock/scheduler. The provider participates by installing
/// a responder (typically audit::Prover) via set_responder.
class AuditContract {
 public:
  /// Responder: called when a challenge is posted; returns the serialized
  /// proof, or nullopt to simulate an unresponsive provider.
  using Responder =
      std::function<std::optional<std::vector<std::uint8_t>>(const Challenge&)>;

  /// Owning constructor (the historical shape): the contract copies the
  /// public key, builds its own prepared Verifier from it, and owns its
  /// per-file context. `prepared` optionally injects that context (chunk
  /// hash points + shifted-base table) built elsewhere — NetworkSim builds
  /// them for whole deployments in parallel before the sequential contract
  /// phase. It must match (file_name, num_chunks); mismatches (or nullopt)
  /// fall back to building the context here.
  AuditContract(chain::Blockchain& chain, chain::RandomnessBeacon& beacon,
                ContractTerms terms, PublicKey pk, audit::Fr file_name,
                std::size_t num_chunks,
                std::optional<audit::PreparedFile> prepared = std::nullopt);

  /// Shared-context constructor for population-scale simulations: borrows a
  /// caller-owned prepared Verifier (its G2 line tables dominate the
  /// per-contract footprint when every contract carries its own), and
  /// optionally a caller-owned PreparedFile. Both must outlive the contract.
  /// A null `file_ctx` selects the verifier's cold path (chunk hashes
  /// recomputed per round from name/num_chunks) — slower per verification,
  /// zero per-file retained state; outcomes and gas are identical.
  AuditContract(chain::Blockchain& chain, chain::RandomnessBeacon& beacon,
                ContractTerms terms, const audit::Verifier& verifier,
                audit::Fr file_name, std::size_t num_chunks,
                const audit::PreparedFile* file_ctx = nullptr);

  // Scheduled callbacks capture `this`, and the owning constructor's
  // verifier borrows the owned pk: copying or moving would leave either
  // pointing into the source.
  AuditContract(const AuditContract&) = delete;
  AuditContract& operator=(const AuditContract&) = delete;

  // --- Initialize phase (Fig. 2 top) ---------------------------------------
  /// D deploys agreements + params + metadata; pays the one-time storage tx.
  void negotiated();
  /// S acknowledges (accept) or walks away (reject -> Closed).
  void acked(bool accept);
  /// Both parties deposit; locks funds and schedules the first challenge.
  void freeze();

  // --- Audit phase ----------------------------------------------------------
  /// Responder exceptions are contained: a throwing responder is treated as
  /// an unresponsive one (the round times out / retries), so an injected
  /// fault inside a concurrent prepare fails a round, not the process.
  void set_responder(Responder responder) { responder_ = std::move(responder); }

  /// Provider-abort lifecycle: S walks away from a live contract (Audit or
  /// Prove). Escrow release rules: the owner receives every undelivered
  /// reward plus an exit fee of one penalty_per_fail taken from the
  /// provider's remaining collateral; the provider keeps the rest. An
  /// in-flight round is recorded as Aborted (it moves no money). The
  /// contract closes with CloseReason::ProviderExit.
  void provider_exit();

  /// Invoked exactly once when the contract reaches State::Closed, from the
  /// sequential action phase — NetworkSim hangs shard-repair scheduling off
  /// this. Set before the contract can close.
  using ClosedCallback = std::function<void(CloseReason)>;
  void set_on_closed(ClosedCallback cb) { on_closed_ = std::move(cb); }

  /// Invoked from the sequential action phase each time a round reaches its
  /// terminal outcome (Pass/Fail/Timeout settle, or Aborted by a provider
  /// exit), with the finished record. NetworkSim maintains its incremental
  /// population aggregates off this — the streaming replacement for walking
  /// rounds() after the fact.
  using RoundCallback = std::function<void(const RoundRecord&)>;
  void set_on_round(RoundCallback cb) { on_round_ = std::move(cb); }

  /// Deferred-settlement mode: this contract's due rounds queue into `batch`
  /// (shared across contracts) and settle together with every round due at
  /// the same chain instant — 3 pairings per block per distinct key instead
  /// of 3 per round. Outcomes, payouts and chain state are identical to
  /// inline settlement; terms.batch_gas_discount optionally prices the
  /// amortization. The BatchSettlement must outlive the contract.
  void enable_deferred_settlement(BatchSettlement& batch) { batch_ = &batch; }

  // --- inspection -----------------------------------------------------------
  State state() const { return state_; }
  CloseReason close_reason() const { return close_reason_; }
  std::uint64_t rounds_completed() const { return cnt_; }
  /// Retained round records: everything ever challenged under full
  /// retention (terms.retained_rounds == 0), the most recent ring otherwise.
  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  const std::vector<ContractEvent>& events() const { return events_; }
  std::uint64_t escrow_balance() const;
  const ContractTerms& terms() const { return terms_; }
  Address address() const { return address_; }

  // O(1) aggregate counters, exact in every retention mode.
  std::uint64_t passes() const { return passes_; }
  std::uint64_t fails() const { return fails_; }        // verification failures
  std::uint64_t timeouts() const { return timeouts_; }  // proofs never arrived
  std::uint64_t aborted_rounds() const { return aborted_; }
  std::uint64_t timeout_retries() const { return retries_; }
  /// Sum of gas_used over settled rounds (the prove-tx gas; aborted and
  /// timed-out rounds carry none).
  std::uint64_t total_round_gas() const { return round_gas_; }
  /// Rounds ever challenged (== rounds().size() under full retention).
  std::uint64_t rounds_challenged() const { return records_created_; }

 private:
  void emit(const std::string& what);
  void schedule_challenge(Timestamp when);
  /// Run the responder with exception containment (a throw == no proof).
  std::optional<std::vector<std::uint8_t>> ask_responder(const Challenge& c);
  /// Heavy, chain-state-free halves of the round callbacks. The Blockchain
  /// runs them concurrently across contracts due at the same instant (see
  /// ScheduledTask::prepare); the matching *_due actions consume the staged
  /// results and perform all chain mutations sequentially.
  void prepare_challenge(Timestamp now);
  void on_challenge_due(Timestamp now);
  void prepare_verify(Timestamp now);
  void on_verify_due(Timestamp now);
  /// Requeue path: re-ask the responder for the in-flight round's proof at
  /// a later instant (next settlement boundary / one response window on).
  void prepare_retry(Timestamp now);
  void on_retry_due(Timestamp now);
  /// Tail of a proved round (prove tx, gas, payout) once its outcome is
  /// known — inline, same-instant batched, or redeemed at a later window
  /// boundary (windowed settlement defers redemption to Ticket::settle_at).
  void finalize_proved(const BatchSettlement::Outcome& outcome);
  /// Round bookkeeping shared by every outcome path: bump the counter,
  /// close at the horizon or schedule the next challenge on the original
  /// cadence (anchored to this round's challenge time, so a window-deferred
  /// redemption does not stretch the audit period).
  void advance_round();
  void settle_and_close();
  /// Missed-deadline slashing: drain the whole remaining escrow to the
  /// owner and terminate with CloseReason::Slashed.
  void slash_and_close();
  /// Shared closure tail: set state/reason, emit, fire on_closed_ once.
  void close(CloseReason reason, const std::string& event);
  /// Fold a terminal outcome into the aggregate counters and notify
  /// on_round_. Called exactly once per settled/aborted record.
  void settle_record(const RoundRecord& rec);
  /// Enforce terms.retained_rounds/retained_events. Only called at points
  /// where no in-flight round references rounds_.back() across the trim.
  void trim_history();
  Challenge challenge_from_beacon(std::uint64_t round) const;
  std::array<std::uint8_t, 32> round_transcript() const;

  chain::Blockchain& chain_;
  chain::RandomnessBeacon& beacon_;
  ContractTerms terms_;
  // Owning mode: pk_owned_ holds the copied key, verifier_owned_ the
  // prepared verifier built from it (heap-allocated so the borrow survives
  // any move of the containing pointers), ctx_owned_ the per-file context.
  // Shared mode: all three stay null and the raw pointers borrow
  // caller-owned state. verifier_ is never null; file_ctx_ may be (cold
  // verification path).
  std::unique_ptr<PublicKey> pk_owned_;
  std::unique_ptr<audit::Verifier> verifier_owned_;
  std::unique_ptr<audit::PreparedFile> ctx_owned_;
  const audit::Verifier* verifier_ = nullptr;
  const audit::PreparedFile* file_ctx_ = nullptr;
  audit::Fr file_name_;
  std::size_t num_chunks_;
  Address address_;

  State state_ = State::Uninitialized;
  CloseReason close_reason_ = CloseReason::None;
  std::uint64_t cnt_ = 0;
  /// Consecutive non-passing rounds (Fail/Timeout); reset by every Pass.
  /// Feeds the slash_after_consecutive threshold.
  std::uint32_t consecutive_misses_ = 0;
  Responder responder_;
  ClosedCallback on_closed_;
  RoundCallback on_round_;
  BatchSettlement* batch_ = nullptr;  // non-owning; set by enable_deferred_...
  std::optional<std::vector<std::uint8_t>> pending_proof_;
  std::vector<RoundRecord> rounds_;
  std::vector<ContractEvent> events_;
  // Aggregate counters (see the accessors).
  std::uint64_t passes_ = 0;
  std::uint64_t fails_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t round_gas_ = 0;
  std::uint64_t records_created_ = 0;
  chain::GasSchedule gas_ = chain::GasSchedule::calibrated();
  // §VII-B calibrated per-audit cost model: the source of the deterministic
  // verification-gas figure (the measured wall-clock stays telemetry).
  econ::AuditCostModel cost_;

  // Staging area filled by prepare_* and consumed by the same instant's
  // action; only ever touched for this contract's own tasks.
  struct StagedChallenge {
    Challenge challenge;
    std::optional<std::vector<std::uint8_t>> proof;
  };
  std::optional<StagedChallenge> staged_challenge_;
  struct StagedVerify {
    bool ok = false;
    double verify_ms = 0;
    // Deferred mode: the round sits in the shared batch instead; the action
    // redeems this ticket for its outcome.
    std::optional<BatchSettlement::Ticket> ticket;
  };
  std::optional<StagedVerify> staged_verify_;
};

}  // namespace dsaudit::contract
