// Block-level deferred settlement: the engine that turns per-round
// verification cost into per-block (and, with a settlement window, per-
// multi-block) cost.
//
// Contracts in deferred mode hand their due rounds here from their prepare
// stages (which the Blockchain runs concurrently across contracts); the
// settlement sorts the batch canonically, derives a fresh Fiat–Shamir weight
// seed from the batch transcript, and verifies the whole set as one weighted
// multi-pairing (audit::verify_settlement — 1 + 2·keys pairings, bisection
// isolating any culprits) in the Blockchain's between-prepares-and-actions
// hook. Each contract's action then redeems its ticket sequentially in
// schedule order, so ledger, gas and event ordering are identical to inline
// settlement at every thread count.
//
// With a settlement window configured on the chain
// (ChainConfig::settlement_window_s > 1), the batch stays open across chain
// instants: rounds due anywhere inside the window keep enqueueing, the
// engine schedules one boundary task, and the flush fires once at the
// window boundary under a single Fiat–Shamir seed covering every round of
// the window (the boundary timestamp is folded into the seed preimage, and
// the replay registry records the per-window seed). Contracts whose rounds
// were due mid-window redeem their tickets at the boundary (Ticket::
// settle_at tells them when). Window <= 1 degenerates to the per-instant
// behavior above, bit-identically.
//
// Aggregate tx mode (enable_aggregate_tx): each flush additionally posts ONE
// constant-size settlement tx on chain — the window's Fiat–Shamir weight
// seed, the aggregated KZG opening (sum_i [w_i zeta_i] psi_i, a single G1
// element covering every Eq.1/Eq.2 round of the window) and a per-round
// outcome bitmap plus the seed-derivation nonce that lets any verifier
// re-derive the seed from the round transcripts
// (audit::AggregateSettlement, 88 + ceil(rounds/8) bytes).
// Clean windows redeem every ticket against that tx: Outcome::aggregated
// tells the contract to post NO per-round prove tx and charge NO per-round
// gas. A window containing a detected cheater sets Outcome::fallback — the
// bisection evidence must land on chain, so every round of that window
// re-posts its individual proof exactly as in legacy mode. Disabled
// (default), nothing changes: ledger, chain bytes and gas stay bit-identical
// to per-round settlement.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "audit/protocol.hpp"
#include "chain/blockchain.hpp"
#include "econ/cost_model.hpp"
#include "primitives/random.hpp"

namespace dsaudit::contract {

class BatchSettlement {
 public:
  /// Handed out by enqueue, redeemed by the matching action.
  struct Ticket {
    std::uint64_t batch = 0;
    std::size_t index = 0;  // enqueue position within the batch
    /// The window boundary this round settles at (== the enqueue instant
    /// when windows are disabled). A contract whose try_outcome comes back
    /// empty schedules its redemption action here.
    chain::Timestamp settle_at = 0;
  };

  struct Outcome {
    bool ok = false;
    std::size_t batch_size = 0;  // rounds settled together with this one
    double flush_ms = 0;         // wall clock of the whole batch (telemetry)
    /// This round settled under an aggregate window tx: redeem against it
    /// (no per-round prove tx, no per-round gas) unless `fallback` is set.
    bool aggregated = false;
    /// The window contained a detected cheater: the bisection evidence goes
    /// on chain, so every round of the window re-posts its individual proof.
    bool fallback = false;
  };

  struct Stats {
    std::uint64_t batches = 0;        // flushes performed (== windows settled)
    std::uint64_t rounds = 0;         // instances settled
    std::uint64_t instants = 0;       // distinct chain instants that enqueued
    std::uint64_t batch_checks = 0;   // weighted aggregate checks (incl. bisection)
    std::uint64_t single_checks = 0;  // bisection leaves re-verified exactly
    std::uint64_t culprits = 0;       // rounds isolated as failing
    std::uint64_t pairing_chains = 0; // Miller chains across all flushes
    // Aggregate-tx telemetry (zero unless enable_aggregate_tx).
    std::uint64_t aggregate_txs = 0;       // window txs posted
    std::uint64_t aggregate_tx_bytes = 0;  // their summed payload bytes
    std::uint64_t aggregate_tx_gas = 0;    // their summed gas
    std::uint64_t fallback_windows = 0;    // windows that re-posted per-round
  };

  /// `seed_nonce` keys the per-batch nonce stream (NetworkSim passes its
  /// network seed so runs stay reproducible).
  explicit BatchSettlement(std::uint64_t seed_nonce = 0);

  /// Turn on aggregate window txs (see the header comment). Must be called
  /// before the first enqueue; the tx is submitted to the chain the rounds
  /// were enqueued against, priced by `cost` (default: the calibrated
  /// aggregate rows).
  void enable_aggregate_tx(econ::AuditCostModel cost = {});
  bool aggregate_tx_enabled() const;

  /// The most recently posted aggregate window tx (nullopt before the first
  /// aggregate flush): what the on-chain verifier and the adversarial tests
  /// check with audit::verify_settlement_aggregate / attack the seed of.
  std::optional<audit::AggregateSettlement> last_aggregate() const;

  /// The canonical (transcript-sorted) round transcripts of the most
  /// recently flushed window — exactly the sequence the window's weight
  /// seed hashed over, so an external verifier can re-derive the posted
  /// tx's seed with audit::derive_settlement_seed.
  std::vector<std::array<std::uint8_t, 32>> last_transcripts() const;

  /// Register one settlement-ready round. Thread-safe — called from
  /// concurrent prepare stages. `transcript` must commit the round's
  /// identity, challenge and proof bytes: it orders the batch canonically
  /// (so results are independent of arrival order) and feeds the
  /// Fiat–Shamir weight seed. The first enqueue at an instant arms the
  /// chain's defer_until_actions hook; the hook flushes when the instant is
  /// at the window boundary and otherwise schedules the boundary task that
  /// will. The instance borrows its verifier/file contexts — the owning
  /// contract keeps them alive. Every round of an engine's lifetime must
  /// enqueue against the SAME chain (deferred flushes post to it later);
  /// passing a different one throws std::logic_error.
  Ticket enqueue(chain::Blockchain& chain, audit::SettlementInstance instance,
                 const std::array<std::uint8_t, 32>& transcript);

  /// Redeem a ticket if its batch has flushed. When the ticket's batch is
  /// still open and `now` has reached the window deadline (always true for
  /// per-instant windows on the direct-call test paths), the batch flushes
  /// on demand first; a mid-window call returns nullopt and the contract
  /// should retry at Ticket::settle_at. Throws on a ticket that references
  /// a flushed batch it was never part of.
  std::optional<Outcome> try_outcome(const Ticket& ticket, chain::Timestamp now);

  /// Redeem a ticket unconditionally (flushes the pending batch first when
  /// it is still open — the boundary-task path guarantees the flush already
  /// ran by the time a deferred redemption action fires).
  Outcome outcome(const Ticket& ticket);

  /// Weight-seed freshness registry: records `seed` as consumed, returns
  /// false if it was already used. flush() refuses to settle a batch whose
  /// derived seed replays (an adversary who saw a weight schedule could
  /// craft cancelling forgeries against it); with the per-batch nonce this
  /// never triggers in normal operation. Thread-safe like enqueue/outcome.
  bool consume_weight_seed(const std::array<std::uint8_t, 32>& seed);

  /// The Fiat–Shamir seed of the most recent flush (nullopt before the
  /// first): each settled window's seed sits in the replay registry, so a
  /// replay of it is refused — the adversarial tests pin this.
  std::optional<std::array<std::uint8_t, 32>> last_weight_seed() const;

  Stats stats() const;

 private:
  void on_instant(chain::Blockchain& chain, chain::Timestamp now,
                  std::unique_lock<std::mutex>& lock);
  /// Settles the open batch. Called with `lock` held; the heavy
  /// verification itself runs with the lock RELEASED (the engine mutex must
  /// never be held across the thread pool's submit lock — enqueue runs on
  /// pool workers under it, and holding both in opposite orders is a lock
  /// inversion). Snapshot-out, verify, store-back: enqueues that land
  /// mid-verification open the next batch.
  void flush(std::unique_lock<std::mutex>& lock);
  bool consume_weight_seed_locked(const std::array<std::uint8_t, 32>& seed);

  /// Blocks until no flush of `batch` is mid-verification (flush releases
  /// the mutex around the heavy verify; a concurrent redeemer of that batch
  /// must wait for the result store, not mis-read it as unknown).
  void wait_for_flush_locked(std::unique_lock<std::mutex>& lock,
                             std::uint64_t batch);

  mutable std::mutex mutex_;
  std::condition_variable flush_cv_;
  bool flush_in_progress_ = false;
  std::uint64_t flushing_batch_ = 0;
  primitives::SecureRng nonce_rng_;
  std::uint64_t current_batch_ = 0;
  bool hook_armed_ = false;
  bool boundary_armed_ = false;
  chain::Timestamp window_deadline_ = 0;  // boundary of the open window
  chain::Timestamp last_instant_ = 0;
  bool any_instant_ = false;
  bool aggregate_ = false;
  econ::AuditCostModel cost_;
  /// The chain the rounds were enqueued against — captured so the on-demand
  /// flush paths (try_outcome/outcome, which receive no chain reference) can
  /// still post the window tx. All contracts of one engine share one chain.
  chain::Blockchain* chain_ptr_ = nullptr;
  std::optional<audit::AggregateSettlement> last_aggregate_;
  std::vector<std::array<std::uint8_t, 32>> last_transcripts_;
  std::vector<audit::SettlementInstance> pending_;
  std::vector<std::array<std::uint8_t, 32>> transcripts_;
  struct BatchResult {
    std::vector<bool> ok;
    double flush_ms = 0;
    bool aggregated = false;
    bool fallback = false;
  };
  std::map<std::uint64_t, BatchResult> results_;
  std::set<std::array<std::uint8_t, 32>> used_seeds_;
  std::optional<std::array<std::uint8_t, 32>> last_seed_;
  Stats stats_;
};

}  // namespace dsaudit::contract
