// Block-level deferred settlement: the engine that turns per-round
// verification cost into per-block cost.
//
// Contracts in deferred mode hand their due rounds here from their prepare
// stages (which the Blockchain runs concurrently across contracts); the
// settlement sorts the batch canonically, derives a fresh Fiat–Shamir weight
// seed from the batch transcript, and verifies the whole set as one weighted
// multi-pairing (audit::verify_settlement — 1 + 2·keys pairings, bisection
// isolating any culprits) in the Blockchain's between-prepares-and-actions
// hook. Each contract's action then redeems its ticket sequentially in
// schedule order, so ledger, gas and event ordering are identical to inline
// settlement at every thread count.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "audit/protocol.hpp"
#include "chain/blockchain.hpp"
#include "primitives/random.hpp"

namespace dsaudit::contract {

class BatchSettlement {
 public:
  /// Handed out by enqueue, redeemed by the matching action.
  struct Ticket {
    std::uint64_t batch = 0;
    std::size_t index = 0;  // enqueue position within the batch
  };

  struct Outcome {
    bool ok = false;
    std::size_t batch_size = 0;  // rounds settled together with this one
    double flush_ms = 0;         // wall clock of the whole batch (telemetry)
  };

  struct Stats {
    std::uint64_t batches = 0;        // flushes performed
    std::uint64_t rounds = 0;         // instances settled
    std::uint64_t batch_checks = 0;   // weighted aggregate checks (incl. bisection)
    std::uint64_t single_checks = 0;  // bisection leaves re-verified exactly
    std::uint64_t culprits = 0;       // rounds isolated as failing
    std::uint64_t pairing_chains = 0; // Miller chains across all flushes
  };

  /// `seed_nonce` keys the per-batch nonce stream (NetworkSim passes its
  /// network seed so runs stay reproducible).
  explicit BatchSettlement(std::uint64_t seed_nonce = 0);

  /// Register one settlement-ready round. Thread-safe — called from
  /// concurrent prepare stages. `transcript` must commit the round's
  /// identity, challenge and proof bytes: it orders the batch canonically
  /// (so results are independent of arrival order) and feeds the
  /// Fiat–Shamir weight seed. The first enqueue of a batch arms the chain's
  /// defer_until_actions hook so the flush runs once, after every prepare.
  /// The instance borrows its verifier/file contexts — the owning contract
  /// keeps them alive.
  Ticket enqueue(chain::Blockchain& chain, audit::SettlementInstance instance,
                 const std::array<std::uint8_t, 32>& transcript);

  /// Redeem a ticket (from the contract's action). Flushes the pending
  /// batch first when no chain hook ran (direct-call test paths).
  Outcome outcome(const Ticket& ticket);

  /// Weight-seed freshness registry: records `seed` as consumed, returns
  /// false if it was already used. flush() refuses to settle a batch whose
  /// derived seed replays (an adversary who saw a weight schedule could
  /// craft cancelling forgeries against it); with the per-batch nonce this
  /// never triggers in normal operation. Thread-safe like enqueue/outcome.
  bool consume_weight_seed(const std::array<std::uint8_t, 32>& seed);

  Stats stats() const;

 private:
  void flush_locked();
  bool consume_weight_seed_locked(const std::array<std::uint8_t, 32>& seed);

  mutable std::mutex mutex_;
  primitives::SecureRng nonce_rng_;
  std::uint64_t current_batch_ = 0;
  bool hook_armed_ = false;
  std::vector<audit::SettlementInstance> pending_;
  std::vector<std::array<std::uint8_t, 32>> transcripts_;
  struct BatchResult {
    std::vector<bool> ok;
    double flush_ms = 0;
  };
  std::map<std::uint64_t, BatchResult> results_;
  std::set<std::array<std::uint8_t, 32>> used_seeds_;
  Stats stats_;
};

}  // namespace dsaudit::contract
