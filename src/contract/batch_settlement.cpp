#include "contract/batch_settlement.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "pairing/pairing.hpp"
#include "primitives/keccak256.hpp"

namespace dsaudit::contract {

BatchSettlement::BatchSettlement(std::uint64_t seed_nonce)
    : nonce_rng_(primitives::SecureRng::deterministic(seed_nonce ^
                                                      0xB47C55E771E3E27FULL)) {}

BatchSettlement::Ticket BatchSettlement::enqueue(
    chain::Blockchain& chain, audit::SettlementInstance instance,
    const std::array<std::uint8_t, 32>& transcript) {
  std::lock_guard<std::mutex> lock(mutex_);
  Ticket t{current_batch_, pending_.size()};
  pending_.push_back(std::move(instance));
  transcripts_.push_back(transcript);
  if (!hook_armed_) {
    hook_armed_ = true;
    chain.defer_until_actions([this](chain::Timestamp) {
      std::lock_guard<std::mutex> hook_lock(mutex_);
      flush_locked();
    });
  }
  return t;
}

BatchSettlement::Outcome BatchSettlement::outcome(const Ticket& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ticket.batch == current_batch_ && !pending_.empty()) {
    // Direct-call path (no advance()-driven hook): settle on first demand —
    // everything due at this instant has been enqueued by now.
    flush_locked();
  }
  auto it = results_.find(ticket.batch);
  if (it == results_.end() || ticket.index >= it->second.ok.size()) {
    throw std::logic_error("BatchSettlement: unknown ticket");
  }
  Outcome out{it->second.ok[ticket.index], it->second.ok.size(),
              it->second.flush_ms};
  return out;
}

bool BatchSettlement::consume_weight_seed(
    const std::array<std::uint8_t, 32>& seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  return consume_weight_seed_locked(seed);
}

bool BatchSettlement::consume_weight_seed_locked(
    const std::array<std::uint8_t, 32>& seed) {
  return used_seeds_.insert(seed).second;
}

void BatchSettlement::flush_locked() {
  if (pending_.empty()) {
    hook_armed_ = false;
    return;
  }
  // Canonical batch order: sort by transcript so the weight schedule and
  // results are independent of the concurrent enqueue arrival order.
  std::vector<std::size_t> perm(pending_.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [this](std::size_t a, std::size_t b) {
    return transcripts_[a] < transcripts_[b];
  });
  std::vector<audit::SettlementInstance> sorted;
  sorted.reserve(pending_.size());
  for (std::size_t p : perm) sorted.push_back(std::move(pending_[p]));

  // Fiat–Shamir weight seed over (fresh nonce || every round's transcript):
  // weights are fixed only after all proofs are committed, and the nonce
  // keeps the schedule fresh even for a byte-identical batch.
  std::vector<std::uint8_t> preimage(8 + 32 * perm.size());
  const std::uint64_t nonce = nonce_rng_.next_u64();
  for (int b = 0; b < 8; ++b) {
    preimage[b] = static_cast<std::uint8_t>(nonce >> (8 * b));
  }
  for (std::size_t j = 0; j < perm.size(); ++j) {
    std::memcpy(preimage.data() + 8 + 32 * j, transcripts_[perm[j]].data(), 32);
  }
  auto seed = primitives::Keccak256::hash(
      std::span<const std::uint8_t>(preimage.data(), preimage.size()));
  if (!consume_weight_seed_locked(seed)) {
    throw std::logic_error("BatchSettlement: replayed weight seed");
  }

  auto counters_before = pairing::pairing_counters();
  auto t0 = std::chrono::steady_clock::now();
  audit::SettlementOutcome res = audit::verify_settlement(sorted, seed);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  auto counters_after = pairing::pairing_counters();

  BatchResult batch;
  batch.ok.assign(pending_.size(), false);
  for (std::size_t j = 0; j < perm.size(); ++j) {
    batch.ok[perm[j]] = res.ok[j];
  }
  batch.flush_ms = ms;

  stats_.batches += 1;
  stats_.rounds += perm.size();
  stats_.batch_checks += res.batch_checks;
  stats_.single_checks += res.single_checks;
  stats_.pairing_chains += counters_after.chains - counters_before.chains;
  for (bool ok : batch.ok) stats_.culprits += !ok;

  results_[current_batch_] = std::move(batch);
  // Bound the redemption window: tickets are redeemed within their own
  // instant; anything older than a few batches is an abandoned round.
  while (results_.size() > 16) results_.erase(results_.begin());

  pending_.clear();
  transcripts_.clear();
  hook_armed_ = false;
  ++current_batch_;
}

BatchSettlement::Stats BatchSettlement::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dsaudit::contract
