#include "contract/batch_settlement.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "audit/serialize.hpp"
#include "pairing/pairing.hpp"

namespace dsaudit::contract {

BatchSettlement::BatchSettlement(std::uint64_t seed_nonce)
    : nonce_rng_(primitives::SecureRng::deterministic(seed_nonce ^
                                                      0xB47C55E771E3E27FULL)) {}

void BatchSettlement::enable_aggregate_tx(econ::AuditCostModel cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty() || stats_.batches != 0) {
    throw std::logic_error(
        "BatchSettlement: enable_aggregate_tx after settlement started");
  }
  aggregate_ = true;
  cost_ = std::move(cost);
}

bool BatchSettlement::aggregate_tx_enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

std::optional<audit::AggregateSettlement> BatchSettlement::last_aggregate()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_aggregate_;
}

std::vector<std::array<std::uint8_t, 32>> BatchSettlement::last_transcripts()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_transcripts_;
}

BatchSettlement::Ticket BatchSettlement::enqueue(
    chain::Blockchain& chain, audit::SettlementInstance instance,
    const std::array<std::uint8_t, 32>& transcript) {
  std::lock_guard<std::mutex> lock(mutex_);
  const chain::Timestamp now = chain.now();
  if (pending_.empty()) {
    // First round of a fresh window: fix the boundary every enqueue of this
    // window settles at. Boundaries are aligned multiples of the chain's
    // window, so later enqueues inside the window agree on it.
    window_deadline_ = chain.settlement_boundary(now);
  }
  if (!any_instant_ || last_instant_ != now) {
    any_instant_ = true;
    last_instant_ = now;
    ++stats_.instants;
  }
  Ticket t{current_batch_, pending_.size(), window_deadline_};
  // All rounds of one engine settle against one chain for its whole
  // lifetime: deferred flushes dereference this pointer long after the
  // enqueue that captured it, so a second chain would misdirect (or
  // dangle) the window tx. Hard invariant, not a convention.
  if (chain_ptr_ != nullptr && chain_ptr_ != &chain) {
    throw std::logic_error(
        "BatchSettlement: rounds enqueued against a different chain");
  }
  chain_ptr_ = &chain;
  pending_.push_back(std::move(instance));
  transcripts_.push_back(transcript);
  if (!hook_armed_) {
    hook_armed_ = true;
    chain.defer_until_actions([this, &chain](chain::Timestamp at) {
      std::unique_lock<std::mutex> hook_lock(mutex_);
      on_instant(chain, at, hook_lock);
    });
  }
  return t;
}

/// Runs between the prepares and the actions of every instant that touched
/// the batch (armed per instant by enqueue, and once more at the boundary by
/// the scheduled boundary task): flushes when the instant has reached the
/// window deadline, otherwise makes sure the boundary task exists so the
/// flush fires there — always before any redemption action of that instant.
void BatchSettlement::on_instant(chain::Blockchain& chain,
                                 chain::Timestamp now,
                                 std::unique_lock<std::mutex>& lock) {
  hook_armed_ = false;
  if (pending_.empty()) return;
  if (now >= window_deadline_) {
    flush(lock);
    return;
  }
  if (!boundary_armed_) {
    boundary_armed_ = true;
    // The task's prepare re-registers this hook at the boundary instant, so
    // the flush still runs after every prepare there (rounds due exactly at
    // the boundary join the window) and before every action (which redeem).
    chain.schedule(
        window_deadline_,
        [this, &chain](chain::Timestamp) {
          chain.defer_until_actions([this, &chain](chain::Timestamp at) {
            std::unique_lock<std::mutex> hook_lock(mutex_);
            on_instant(chain, at, hook_lock);
          });
        },
        [](chain::Timestamp) {});
  }
}

std::optional<BatchSettlement::Outcome> BatchSettlement::try_outcome(
    const Ticket& ticket, chain::Timestamp now) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (ticket.batch == current_batch_ && !pending_.empty() &&
      now >= window_deadline_) {
    // Direct-call path (no advance()-driven hook): settle on first demand —
    // everything due by the deadline has been enqueued by now.
    flush(lock);
  }
  wait_for_flush_locked(lock, ticket.batch);
  auto it = results_.find(ticket.batch);
  if (it == results_.end()) {
    if (ticket.batch >= current_batch_) return std::nullopt;  // window open
    throw std::logic_error("BatchSettlement: unknown ticket");
  }
  if (ticket.index >= it->second.ok.size()) {
    throw std::logic_error("BatchSettlement: unknown ticket");
  }
  return Outcome{it->second.ok[ticket.index], it->second.ok.size(),
                 it->second.flush_ms, it->second.aggregated,
                 it->second.fallback};
}

BatchSettlement::Outcome BatchSettlement::outcome(const Ticket& ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (ticket.batch == current_batch_ && !pending_.empty()) {
    flush(lock);
  }
  wait_for_flush_locked(lock, ticket.batch);
  auto it = results_.find(ticket.batch);
  if (it == results_.end() || ticket.index >= it->second.ok.size()) {
    throw std::logic_error("BatchSettlement: unknown ticket");
  }
  return Outcome{it->second.ok[ticket.index], it->second.ok.size(),
                 it->second.flush_ms, it->second.aggregated,
                 it->second.fallback};
}

void BatchSettlement::wait_for_flush_locked(std::unique_lock<std::mutex>& lock,
                                            std::uint64_t batch) {
  flush_cv_.wait(lock, [&] {
    return !flush_in_progress_ || flushing_batch_ != batch;
  });
}

bool BatchSettlement::consume_weight_seed(
    const std::array<std::uint8_t, 32>& seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  return consume_weight_seed_locked(seed);
}

bool BatchSettlement::consume_weight_seed_locked(
    const std::array<std::uint8_t, 32>& seed) {
  return used_seeds_.insert(seed).second;
}

std::optional<std::array<std::uint8_t, 32>> BatchSettlement::last_weight_seed()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seed_;
}

void BatchSettlement::flush(std::unique_lock<std::mutex>& lock) {
  if (pending_.empty()) return;
  // Snapshot the open window under the lock: batch contents, identity and
  // seed material. Enqueues racing with the verification below start the
  // next window against a fresh batch id.
  std::vector<audit::SettlementInstance> snapshot;
  snapshot.swap(pending_);
  std::vector<std::array<std::uint8_t, 32>> transcripts;
  transcripts.swap(transcripts_);
  const std::uint64_t batch_id = current_batch_++;
  const chain::Timestamp deadline = window_deadline_;
  const std::uint64_t nonce = nonce_rng_.next_u64();
  boundary_armed_ = false;

  // Canonical batch order: sort by transcript so the weight schedule and
  // results are independent of the concurrent enqueue arrival order.
  std::vector<std::size_t> perm(snapshot.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return transcripts[a] < transcripts[b];
  });
  std::vector<audit::SettlementInstance> sorted;
  sorted.reserve(snapshot.size());
  std::vector<std::array<std::uint8_t, 32>> sorted_transcripts;
  sorted_transcripts.reserve(snapshot.size());
  for (std::size_t p : perm) {
    sorted.push_back(std::move(snapshot[p]));
    sorted_transcripts.push_back(transcripts[p]);
  }

  // Fiat–Shamir weight seed over (fresh nonce || window boundary || every
  // round's transcript): weights are fixed only after all proofs across the
  // whole window are committed, the boundary binds the seed to its window,
  // and the nonce keeps the schedule fresh even for a byte-identical batch.
  // The derivation is shared with audit::verify_settlement_aggregate, which
  // re-runs it from the posted nonce to refuse self-chosen seeds.
  const auto seed =
      audit::derive_settlement_seed(nonce, deadline, sorted_transcripts);
  if (!consume_weight_seed_locked(seed)) {
    throw std::logic_error("BatchSettlement: replayed weight seed");
  }
  last_seed_ = seed;

  // The verification itself runs unlocked: it fans out over the thread
  // pool, and the engine mutex must never wrap the pool's submit lock
  // (concurrent prepare stages enqueue from inside it). Redeemers of this
  // batch arriving meanwhile block on wait_for_flush_locked instead of
  // mis-reading the not-yet-stored result as an unknown ticket.
  const bool aggregate = aggregate_;
  chain::Blockchain* chain_ptr = chain_ptr_;
  flush_in_progress_ = true;
  flushing_batch_ = batch_id;
  lock.unlock();
  auto counters_before = pairing::pairing_counters();
  auto t0 = std::chrono::steady_clock::now();
  audit::SettlementOptions opts;
  opts.compute_aggregate_opening = aggregate;
  audit::SettlementOutcome res = audit::verify_settlement(sorted, seed, opts);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  auto counters_after = pairing::pairing_counters();

  std::optional<audit::AggregateSettlement> agg;
  std::uint64_t agg_bytes = 0, agg_gas = 0;
  if (aggregate) {
    // Post the window's one settlement tx: seed, aggregated opening, and
    // the outcome bitmap in the canonical (transcript-sorted) batch order.
    // Posting happens here — between the instant's prepares and actions —
    // so the window tx always lands on chain before any ticket redemption.
    audit::AggregateSettlement tx;
    tx.weight_seed = seed;
    tx.seed_nonce = nonce;
    tx.window_boundary = deadline;
    tx.rounds = perm.size();
    tx.opening = res.aggregated_opening;
    tx.outcomes.assign(audit::AggregateSettlement::bitmap_bytes(tx.rounds), 0);
    for (std::size_t j = 0; j < perm.size(); ++j) tx.set_outcome(j, res.ok[j]);
    const auto payload = audit::serialize(tx);
    chain::Transaction ctx;
    ctx.from = "settlement";
    ctx.description = "settle-window";
    ctx.payload_bytes = payload.size();
    ctx.gas_used = cost_.gas_per_window_tx(tx.rounds);
    agg_bytes = ctx.payload_bytes;
    agg_gas = ctx.gas_used;
    chain_ptr->submit(ctx);
    agg = std::move(tx);
  }
  lock.lock();
  last_transcripts_ = std::move(sorted_transcripts);

  BatchResult batch;
  batch.ok.assign(perm.size(), false);
  for (std::size_t j = 0; j < perm.size(); ++j) {
    batch.ok[perm[j]] = res.ok[j];
  }
  batch.flush_ms = ms;
  batch.aggregated = aggregate;
  batch.fallback = aggregate && !res.all_ok();

  stats_.batches += 1;
  stats_.rounds += perm.size();
  stats_.batch_checks += res.batch_checks;
  stats_.single_checks += res.single_checks;
  stats_.pairing_chains += counters_after.chains - counters_before.chains;
  for (bool ok : batch.ok) stats_.culprits += !ok;
  if (aggregate) {
    last_aggregate_ = std::move(agg);
    stats_.aggregate_txs += 1;
    stats_.aggregate_tx_bytes += agg_bytes;
    stats_.aggregate_tx_gas += agg_gas;
    stats_.fallback_windows += batch.fallback;
  }

  results_[batch_id] = std::move(batch);
  // Bound the redemption window: tickets are redeemed by their window
  // boundary; anything older than a few windows is an abandoned round.
  while (results_.size() > 16) results_.erase(results_.begin());
  flush_in_progress_ = false;
  flush_cv_.notify_all();
}

BatchSettlement::Stats BatchSettlement::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dsaudit::contract
