// Payload sizes of the contract's administrative transactions — the single
// source of truth shared by AuditContract (which stamps payload_bytes on
// every tx it submits) and the payload-accounting tests (which assert each
// on-chain payload_bytes equals the real serialized size).
//
// Everything here is derived: crypto payloads come from the audit wire
// constants the serializers static_assert against (audit/serialize.hpp),
// the challenge payload from the beacon's actual output type, and the
// administrative records from the EVM storage-word convention the gas
// schedule already uses — no free-floating magic numbers.
#pragma once

#include <cstddef>
#include <tuple>

#include "audit/serialize.hpp"
#include "chain/beacon.hpp"

namespace dsaudit::contract::txfmt {

/// EVM storage/calldata word — the unit administrative records are laid
/// out in (GasSchedule::storage_word prices one of these).
inline constexpr std::size_t kEvmWordBytes = 32;

/// "challenged" / "retry": the beacon bytes both sides expand into
/// (C1, C2, r) — the challenge reference every audit round posts.
inline constexpr std::size_t kChallengePayload =
    std::tuple_size_v<chain::BeaconOutput>;

/// "acked" / "rejected": one accept/reject byte.
inline constexpr std::size_t kAckPayload = 1;

/// "freeze": the two escrow locks (owner reward pool, provider collateral),
/// one storage word each.
inline constexpr std::size_t kFreezePayload = 2 * kEvmWordBytes;

/// "slashed" / "provider-exit": the closing round counter, one u64.
inline constexpr std::size_t kClosePayload = audit::kU64WireBytes;

/// "negotiated": the serialized public key plus the agreement trailer —
/// file name (one Fr) and chunk count d (one u64), as measured by Fig. 4.
constexpr std::size_t negotiated_payload(std::size_t pk_bytes) {
  return pk_bytes + audit::kFrWireBytes + audit::kU64WireBytes;
}

}  // namespace dsaudit::contract::txfmt
