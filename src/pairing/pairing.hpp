// Optimal ate pairing e : G1 x G2 -> GT on BN254.
//
//   e(P, Q) = f_{6t+2,Q}(P) * l_{[6t+2]Q, psi(Q)}(P) * l_{..., -psi^2(Q)}(P),
//   all raised to (p^12 - 1)/r.
//
// The Miller loop keeps the running G2 point in affine coordinates on the
// twist and evaluates chord/tangent lines through the untwisting map — the
// textbook construction, chosen for auditability; the fast structured final
// exponentiation is cross-checked in tests against a generic exponentiation
// by (p^12-1)/r.
//
// The verification equations (1) and (2) of the paper are products of four
// pairings; multi_pairing shares the single final exponentiation across all
// Miller loops, which is what makes on-chain verification constant-cost.
#pragma once

#include <span>
#include <utility>

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "field/fp12.hpp"

namespace dsaudit::pairing {

using curve::G1;
using curve::G2;
using ff::Fp12;

/// Full pairing. e(inf, Q) = e(P, inf) = 1.
Fp12 pairing(const G1& p, const G2& q);

/// Miller loop only (no final exponentiation); building block for products.
Fp12 miller_loop(const G1& p, const G2& q);

/// Map a Miller-loop output (or any Fp12 value) to the r-order subgroup.
Fp12 final_exponentiation(const Fp12& f);

/// Reference implementation by a single giant exponent (p^12-1)/r; slow,
/// used to cross-validate the structured version.
Fp12 final_exponentiation_slow(const Fp12& f);

/// prod_i e(p_i, q_i) with one shared final exponentiation.
Fp12 multi_pairing(std::span<const std::pair<G1, G2>> pairs);

/// True iff prod_i e(p_i, q_i) == 1 — the natural shape of Eq. (1)/(2)
/// checks after moving everything to one side.
bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs);

}  // namespace dsaudit::pairing
