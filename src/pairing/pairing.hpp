// Optimal ate pairing e : G1 x G2 -> GT on BN254.
//
//   e(P, Q) = f_{6t+2,Q}(P) * l_{[6t+2]Q, psi(Q)}(P) * l_{..., -psi^2(Q)}(P),
//   all raised to (p^12 - 1)/r.
//
// The production path is a prepared-pairing engine: the Miller loop keeps the
// running G2 point in homogeneous projective coordinates on the twist
// (inversion-free doubling/addition step formulas), and every line
// coefficient depends only on Q — so G2Prepared computes the whole
// coefficient chain once per fixed Q and miller_loop replays it with two Fp
// scalings per line. Products of pairings replay all chains in lock-step
// under a single running f, sharing the per-bit Fp12 squaring across every
// pair, and one final exponentiation (cyclotomic squarings in the hard part)
// finishes the product. That is what makes the paper's 4-pairing on-chain
// verification constant-cost, and what lets one prepared verifier key serve
// many audit rounds.
//
// The textbook affine+untwist Miller loop from the original implementation is
// retained as *_textbook — it is the differential oracle the prepared engine
// is pinned against in tests (the raw Miller values differ by a subfield
// factor that the final exponentiation kills, so the oracle equality is at
// the pairing level).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "curve/g1.hpp"
#include "curve/g2.hpp"
#include "field/fp12.hpp"

namespace dsaudit::pairing {

using curve::G1;
using curve::G2;
using ff::Fp12;
using ff::Fp2;

/// All Miller-loop line coefficients for a fixed G2 point, cached once.
/// Every coefficient triple folds into the running f as the sparse element
/// (a*yp, 0, 0) + (b*xp, c, 0)w via Fp12::mul_by_line, where (xp, yp) is the
/// G1 argument — preparing removes all G2-side field work from the loop.
class G2Prepared {
 public:
  struct Coeffs {
    Fp2 a, b, c;  // line = (a*yp) + (b*xp) w + c w^3, up to a subfield factor
  };

  G2Prepared() = default;  // prepared infinity: pairs to 1 with anything
  explicit G2Prepared(const G2& q);

  bool is_infinity() const { return coeffs_.empty(); }
  const std::vector<Coeffs>& coeffs() const { return coeffs_; }

 private:
  std::vector<Coeffs> coeffs_;
};

/// One (G1, prepared-G2) input of a pairing product. Non-owning: the caller
/// keeps the G2Prepared alive for the duration of the call (verifier keys do
/// exactly that).
struct PreparedPair {
  G1 g1;
  const G2Prepared* g2 = nullptr;
};

/// Full pairing. e(inf, Q) = e(P, inf) = 1.
Fp12 pairing(const G1& p, const G2& q);
Fp12 pairing(const G1& p, const G2Prepared& q);

/// Miller loop only (no final exponentiation); building block for products.
Fp12 miller_loop(const G1& p, const G2& q);
Fp12 miller_loop(const G1& p, const G2Prepared& q);

/// Map a Miller-loop output (or any Fp12 value) to the r-order subgroup.
Fp12 final_exponentiation(const Fp12& f);

/// Reference implementation by a single giant exponent (p^12-1)/r; slow,
/// used to cross-validate the structured version.
Fp12 final_exponentiation_slow(const Fp12& f);

/// prod_i e(p_i, q_i) with lock-step Miller loops (one shared Fp12 squaring
/// per bit for the whole product) and one shared final exponentiation.
Fp12 multi_pairing(std::span<const std::pair<G1, G2>> pairs);
Fp12 multi_pairing(std::span<const PreparedPair> pairs);

/// True iff prod_i e(p_i, q_i) == 1 — the natural shape of Eq. (1)/(2)
/// checks after moving everything to one side.
bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs);
bool pairing_product_is_one(std::span<const PreparedPair> pairs);

/// True iff g lies in GT, the order-r subgroup of Fp12^* hit by the pairing:
/// first the cyclotomic-subgroup identity g^{p^4+1} == g^{p^2} (cheap, two
/// Frobenius maps), then g^r == 1 with cyclotomic squarings. Deserializers
/// use this to reject unit-norm Fp12 values that are not pairing outputs.
bool gt_in_subgroup(const Fp12& g);

/// Textbook affine-coordinates Miller loop and pairing (the original
/// implementation, chord/tangent lines through the untwisting map). Retained
/// purely as the differential-test oracle for the prepared engine.
Fp12 miller_loop_textbook(const G1& p, const G2& q);
Fp12 pairing_textbook(const G1& p, const G2& q);

/// Process-wide pairing-cost telemetry: `chains` counts Miller chains
/// evaluated — one per finite (G1, G2) pair in any pairing or product, i.e.
/// "number of pairings" in the paper's accounting — and `final_exps` counts
/// final exponentiations. The batched-settlement tests assert "3 pairings
/// for a whole block" against deltas of these counters.
struct PairingCounters {
  std::uint64_t chains = 0;
  std::uint64_t final_exps = 0;
};
PairingCounters pairing_counters();
void reset_pairing_counters();

}  // namespace dsaudit::pairing
