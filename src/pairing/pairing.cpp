#include "pairing/pairing.hpp"

#include <atomic>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace dsaudit::pairing {

namespace {

/// Process-wide telemetry (relaxed atomics: counts only, no ordering). The
/// settlement tests assert "3 pairings for a whole batch" against these.
std::atomic<std::uint64_t> g_chains{0};
std::atomic<std::uint64_t> g_final_exps{0};

using ff::Fp;
using ff::Fp6;
using bigint::u128;
using bigint::VarUInt;

/// Affine point on the twist (Fp2 coordinates), never infinity inside the
/// Miller loop for valid inputs of prime order r.
struct TwistPoint {
  Fp2 x, y;
};

/// A chord/tangent line through untwisted points, evaluated at P = (xp, yp):
///   l = yp - lambda' * xp * w + (lambda' * xT - yT) * w^3,
/// where lambda' is the slope on the twist. Kept sparse — the Miller loop
/// folds it in with Fp12::mul_by_line.
struct Line {
  Fp2 a, b, c;  // (a,0,0) + (b, c, 0) w
};

Line line_value(const Fp2& lambda, const TwistPoint& t, const Fp& xp, const Fp& yp) {
  return Line{Fp2{yp, Fp::zero()}, -(lambda.mul_fp(xp)), lambda * t.x - t.y};
}

/// Vertical line x = xT evaluated at P (used only in the degenerate
/// T.x == Q.x, T != Q addition case, which cannot occur for honest inputs
/// but must not crash on adversarial ones): l = xp - xT * w^2. Not sparse in
/// the Line shape, so returned as a full Fp12.
Fp12 vertical_line_value(const TwistPoint& t, const Fp& xp) {
  return Fp12{Fp6{Fp2{xp, Fp::zero()}, -t.x, Fp2::zero()}, Fp6::zero()};
}

/// Tangent step: returns the line through (T, T) at P and doubles T in place.
Line double_step(TwistPoint& t, const Fp& xp, const Fp& yp) {
  Fp2 x2 = t.x.square();
  Fp2 lambda = x2.triple() * (t.y.dbl()).inverse();
  Line l = line_value(lambda, t, xp, yp);
  Fp2 xr = lambda.square() - t.x.dbl();
  Fp2 yr = lambda * (t.x - xr) - t.y;
  t = {xr, yr};
  return l;
}

/// Chord step: folds the chord line through (T, Q) into f and sets T = T + Q.
void add_step_into(Fp12& f, TwistPoint& t, const TwistPoint& q, const Fp& xp,
                   const Fp& yp) {
  if (t.x == q.x) {
    if (t.y == q.y) {
      Line l = double_step(t, xp, yp);
      f = f.mul_by_line(l.a, l.b, l.c);
      return;
    }
    // T + (-T): vertical line; for order-r inputs with the optimal-ate loop
    // count this is unreachable, but adversarial inputs must not crash.
    f = f * vertical_line_value(t, xp);
    t = {Fp2::zero(), Fp2::zero()};  // poisoned; loop ends immediately after
    return;
  }
  Fp2 lambda = (q.y - t.y) * (q.x - t.x).inverse();
  Line l = line_value(lambda, t, xp, yp);
  Fp2 xr = lambda.square() - t.x - q.x;
  Fp2 yr = lambda * (t.x - xr) - t.y;
  t = {xr, yr};
  f = f.mul_by_line(l.a, l.b, l.c);
}

TwistPoint to_twist_affine(const G2& q) {
  auto [x, y] = q.to_affine();
  return {x, y};
}

/// The optimal-ate loop count 6t + 2 (65 bits for BN254), derived from the
/// BN parameter rather than hard-coded. This binary expansion drives only
/// the textbook oracle loop; the prepared engine walks the NAF chain below.
const std::vector<bool>& six_t_plus_2_bits() {
  static const std::vector<bool> bits = [] {
    u128 v = static_cast<u128>(6) * ff::kBnParamT + 2;
    std::vector<bool> b;
    while (v != 0) {
      b.push_back((v & 1) != 0);
      v >>= 1;
    }
    return b;  // little-endian
  }();
  return bits;
}

/// Signed NAF digits of 6t + 2 (little-endian, digits in {-1, 0, 1}): 22
/// nonzero digits where the binary expansion has 37 set bits — 15 fewer
/// addition steps per Miller chain, paid for by one extra doubling (the NAF
/// is one digit longer). A digit of -1 adds -Q; for even embedding degree
/// the dropped vertical lines land in a subfield the final exponentiation
/// kills, so pairing-level results are unchanged (the textbook binary loop
/// stays as the differential oracle for exactly that equality). Shared by
/// the G2Prepared coefficient builder and the replay loops — both must walk
/// the identical chain for the lock-step cursor to line up.
const std::vector<std::int8_t>& six_t_plus_2_naf() {
  static const std::vector<std::int8_t> naf = [] {
    u128 v = static_cast<u128>(6) * ff::kBnParamT + 2;
    std::vector<std::int8_t> d;
    while (v != 0) {
      if (v & 1) {
        // Odd: pick the digit in {-1, 1} making v - digit divisible by 4,
        // which forces the next digit to 0 (the NAF property).
        std::int8_t di = (v & 3) == 3 ? -1 : 1;
        d.push_back(di);
        v -= di;  // unsigned wrap-around implements the -(-1) correctly
      } else {
        d.push_back(0);
      }
      v >>= 1;
    }
    return d;  // little-endian; top digit is always 1
  }();
  return naf;
}

// ---------------------------------------------------------------------------
// Prepared engine: homogeneous projective Miller steps (Costello–Lange–
// Naehrig formulas for the D-type twist y^2 = x^3 + b/xi). The running point
// (X : Y : Z) represents (X/Z, Y/Z); both steps are inversion-free, and the
// produced line coefficients are the affine chord/tangent lines scaled by a
// factor in Fp2 — a subfield of Fp12 killed by the final exponentiation.
// ---------------------------------------------------------------------------

struct HomProjective {
  Fp2 x, y, z;
};

const Fp& half_fp() {
  static const Fp h = Fp::from_u64(2).inverse();
  return h;
}

/// Tangent line at T, doubling T in place. Line = -H*yp + 3X^2*xp*w + (E-B)w^3
/// with E = 3b'Z^2, B = Y^2 (up to the shared projective scale).
G2Prepared::Coeffs doubling_step(HomProjective& r) {
  Fp2 a = (r.x * r.y).mul_fp(half_fp());
  Fp2 b = r.y.square();
  Fp2 c = r.z.square();
  Fp2 e = G2::curve_b() * c.triple();
  Fp2 f = e.triple();
  Fp2 g = (b + f).mul_fp(half_fp());
  Fp2 h = (r.y + r.z).square() - (b + c);
  Fp2 i = e - b;
  Fp2 j = r.x.square();
  Fp2 e2 = e.square();
  r.x = a * (b - f);
  r.y = g.square() - e2.triple();
  r.z = b * h;
  return {-h, j.triple(), i};
}

/// Chord line through (T, Q), setting T = T + Q. Never divides, so the
/// degenerate T = -Q case (unreachable for order-r Q and this chain) safely
/// yields the point at infinity (Z = 0) instead of crashing.
G2Prepared::Coeffs addition_step(HomProjective& r, const TwistPoint& q) {
  Fp2 theta = r.y - q.y * r.z;
  Fp2 lambda = r.x - q.x * r.z;
  Fp2 c = theta.square();
  Fp2 d = lambda.square();
  Fp2 e = lambda * d;
  Fp2 f = r.z * c;
  Fp2 g = r.x * d;
  Fp2 h = e + f - g.dbl();
  r.x = lambda * h;
  r.y = theta * (g - h) - e * r.y;
  r.z = r.z * e;
  Fp2 j = theta * q.x - lambda * q.y;
  return {lambda, -theta, j};
}

/// Folds one cached line into f, scaled by the G1 argument's coordinates.
inline void fold_line(Fp12& f, const G2Prepared::Coeffs& co, const Fp& xp,
                      const Fp& yp) {
  f = f.mul_by_line(co.a.mul_fp(yp), co.b.mul_fp(xp), co.c);
}

/// A pairing-product input with the G1 point resolved to affine; built once
/// per call so the lock-step replay loop only touches flat data.
struct ActivePair {
  Fp xp, yp;
  const std::vector<G2Prepared::Coeffs>* coeffs;
};

/// Lock-step Miller loops over any number of prepared pairs: one shared f,
/// one Fp12 squaring per bit for the whole product. Every coefficient chain
/// has identical length and layout (same NAF addition chain), so a single
/// cursor walks all of them.
Fp12 miller_loop_product(std::span<const ActivePair> pairs) {
  if (pairs.empty()) return Fp12::one();
  const auto& naf = six_t_plus_2_naf();
  Fp12 f = Fp12::one();
  std::size_t idx = 0;
  for (std::size_t i = naf.size() - 1; i-- > 0;) {
    f = f.square();
    for (const auto& p : pairs) fold_line(f, (*p.coeffs)[idx], p.xp, p.yp);
    ++idx;
    if (naf[i] != 0) {
      for (const auto& p : pairs) fold_line(f, (*p.coeffs)[idx], p.xp, p.yp);
      ++idx;
    }
  }
  // Final two additions with the Frobenius images of Q.
  for (const auto& p : pairs) fold_line(f, (*p.coeffs)[idx], p.xp, p.yp);
  ++idx;
  for (const auto& p : pairs) fold_line(f, (*p.coeffs)[idx], p.xp, p.yp);
  return f;
}

/// Sharded Miller product: splits the chains into one contiguous group per
/// pool thread, runs each group's lock-step loop concurrently, and multiplies
/// the group values together. Squarings distribute over products
/// ((f_a * f_b)^2 = f_a^2 * f_b^2) and the line folds commute, so the grouped
/// value is the exact same field element as the fully lock-step one — the
/// grouping only trades shared per-bit squarings for wall-clock. One thread
/// (or a single chain) takes the fully shared loop unchanged.
Fp12 miller_loop_product_sharded(std::span<const ActivePair> pairs) {
  const unsigned threads = parallel::thread_count();
  if (threads <= 1 || parallel::in_worker() || pairs.size() <= 1) {
    return miller_loop_product(pairs);
  }
  const std::size_t groups =
      std::size_t{threads} < pairs.size() ? threads : pairs.size();
  std::vector<Fp12> partial(groups, Fp12::one());
  const std::size_t base = pairs.size() / groups, extra = pairs.size() % groups;
  parallel::parallel_for(groups, [&](std::size_t g) {
    const std::size_t begin = g * base + (g < extra ? g : extra);
    const std::size_t end = begin + base + (g < extra ? 1 : 0);
    partial[g] = miller_loop_product(pairs.subspan(begin, end - begin));
  });
  Fp12 f = partial[0];
  for (std::size_t g = 1; g < groups; ++g) f = f * partial[g];
  return f;
}

/// Collects the finite pairs of a product (an infinite side contributes the
/// trivial factor 1) and checks chain-length consistency.
template <typename PairRange, typename GetG1, typename GetPrepared>
Fp12 miller_product_of(const PairRange& pairs, GetG1&& g1_of,
                       GetPrepared&& prep_of) {
  std::vector<ActivePair> active;
  active.reserve(pairs.size());
  std::size_t chain = 0;
  for (const auto& pr : pairs) {
    const G2Prepared& q = prep_of(pr);
    const G1& p = g1_of(pr);
    if (p.is_infinity() || q.is_infinity()) continue;
    if (chain == 0) {
      chain = q.coeffs().size();
    } else if (q.coeffs().size() != chain) {
      throw std::logic_error("multi_pairing: mismatched prepared chains");
    }
    auto [xp, yp] = p.to_affine();
    active.push_back({xp, yp, &q.coeffs()});
  }
  g_chains.fetch_add(active.size(), std::memory_order_relaxed);
  return miller_loop_product_sharded(active);
}

}  // namespace

G2Prepared::G2Prepared(const G2& q) {
  if (q.is_infinity()) return;
  auto [qx, qy] = q.to_affine();
  const TwistPoint qa{qx, qy};
  const TwistPoint qneg{qx, -qy};
  HomProjective r{qx, qy, Fp2::one()};
  const auto& naf = six_t_plus_2_naf();
  coeffs_.reserve(naf.size() + 24);
  for (std::size_t i = naf.size() - 1; i-- > 0;) {
    coeffs_.push_back(doubling_step(r));
    if (naf[i] == 1) {
      coeffs_.push_back(addition_step(r, qa));
    } else if (naf[i] == -1) {
      coeffs_.push_back(addition_step(r, qneg));
    }
  }
  coeffs_.push_back(addition_step(r, to_twist_affine(curve::g2_frobenius(q))));
  coeffs_.push_back(addition_step(r, to_twist_affine(-curve::g2_frobenius2(q))));
}

Fp12 miller_loop(const G1& p, const G2Prepared& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();
  g_chains.fetch_add(1, std::memory_order_relaxed);
  auto [xp, yp] = p.to_affine();
  ActivePair pair{xp, yp, &q.coeffs()};
  return miller_loop_product(std::span<const ActivePair>(&pair, 1));
}

Fp12 miller_loop(const G1& p, const G2& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();
  return miller_loop(p, G2Prepared(q));
}

Fp12 miller_loop_textbook(const G1& p, const G2& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();
  auto [xp, yp] = p.to_affine();
  TwistPoint qa = to_twist_affine(q);
  const auto& bits = six_t_plus_2_bits();

  Fp12 f = Fp12::one();
  TwistPoint t = qa;
  for (std::size_t i = bits.size() - 1; i-- > 0;) {
    f = f.square();
    Line l = double_step(t, xp, yp);
    f = f.mul_by_line(l.a, l.b, l.c);
    if (bits[i]) add_step_into(f, t, qa, xp, yp);
  }
  // Final two additions with the Frobenius images of Q.
  TwistPoint q1 = to_twist_affine(curve::g2_frobenius(q));
  TwistPoint q2 = to_twist_affine(-curve::g2_frobenius2(q));
  add_step_into(f, t, q1, xp, yp);
  add_step_into(f, t, q2, xp, yp);
  return f;
}

Fp12 final_exponentiation(const Fp12& f) {
  if (f.is_zero()) throw std::domain_error("final_exponentiation: zero input");
  g_final_exps.fetch_add(1, std::memory_order_relaxed);
  // Easy part: f^{(p^6-1)(p^2+1)}.
  Fp12 t0 = f.conjugate() * f.inverse();       // f^{p^6 - 1}
  Fp12 elt = t0.frobenius2() * t0;             // ^{p^2 + 1}

  // Hard part: elt^{(p^4 - p^2 + 1)/r} via the Devegili et al. BN recipe
  // (the same structure as go-ethereum's bn256 finalExponentiation). All
  // values here live in the cyclotomic subgroup — the easy part put elt
  // there, and Frobenius maps, conjugates and products stay inside — so the
  // three exponentiations by the BN parameter run their squaring chains in
  // Karabina compressed form (one batched decompression inversion each).
  const ff::u64 u = ff::kBnParamT;
  Fp12 fp = elt.frobenius();
  Fp12 fp2 = elt.frobenius2();
  Fp12 fp3 = fp2.frobenius();
  Fp12 fu = elt.cyclotomic_pow_compressed(u);
  Fp12 fu2 = fu.cyclotomic_pow_compressed(u);
  Fp12 fu3 = fu2.cyclotomic_pow_compressed(u);
  Fp12 y3 = fu.frobenius().conjugate();
  Fp12 fu2p = fu2.frobenius();
  Fp12 fu3p = fu3.frobenius();
  Fp12 y2 = fu2.frobenius2();
  Fp12 y0 = fp * fp2 * fp3;
  Fp12 y1 = elt.conjugate();
  Fp12 y5 = fu2.conjugate();
  Fp12 y4 = (fu * fu2p).conjugate();
  Fp12 y6 = (fu3 * fu3p).conjugate();
  Fp12 a = y6.cyclotomic_square() * y4 * y5;
  Fp12 b = y3 * y5 * a;
  a = a * y2;
  b = (b.cyclotomic_square() * a).cyclotomic_square();
  a = b * y1;
  b = b * y0;
  a = a.cyclotomic_square();
  return a * b;
}

Fp12 final_exponentiation_slow(const Fp12& f) {
  if (f.is_zero()) throw std::domain_error("final_exponentiation_slow: zero input");
  VarUInt p{Fp::modulus()};
  VarUInt e = VarUInt::pow(p, 12) - VarUInt{1};
  auto [q, rem] = VarUInt::divmod(e, VarUInt{ff::Fr::modulus()});
  if (!rem.is_zero()) throw std::logic_error("(p^12-1) not divisible by r");
  return ff::pow_var(f, q);
}

Fp12 pairing(const G1& p, const G2& q) {
  return final_exponentiation(miller_loop(p, q));
}

Fp12 pairing(const G1& p, const G2Prepared& q) {
  return final_exponentiation(miller_loop(p, q));
}

Fp12 pairing_textbook(const G1& p, const G2& q) {
  return final_exponentiation(miller_loop_textbook(p, q));
}

Fp12 multi_pairing(std::span<const std::pair<G1, G2>> pairs) {
  // One-shot path: prepare each finite Q, then replay in lock-step. The
  // preparation work equals the G2-side work a direct loop would do, so even
  // cold this wins the shared squarings.
  std::vector<G2Prepared> prepared(pairs.size());
  parallel::parallel_for(pairs.size(), [&](std::size_t i) {
    if (!pairs[i].first.is_infinity() && !pairs[i].second.is_infinity()) {
      prepared[i] = G2Prepared(pairs[i].second);
    }
  });
  std::vector<PreparedPair> pp(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    pp[i] = {pairs[i].first, &prepared[i]};
  }
  return multi_pairing(std::span<const PreparedPair>(pp));
}

Fp12 multi_pairing(std::span<const PreparedPair> pairs) {
  Fp12 f = miller_product_of(
      pairs, [](const PreparedPair& p) -> const G1& { return p.g1; },
      [](const PreparedPair& p) -> const G2Prepared& {
        static const G2Prepared inf;
        return p.g2 ? *p.g2 : inf;
      });
  return final_exponentiation(f);
}

bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs) {
  return multi_pairing(pairs).is_one();
}

bool pairing_product_is_one(std::span<const PreparedPair> pairs) {
  return multi_pairing(pairs).is_one();
}

bool gt_in_subgroup(const Fp12& g) {
  if (g.is_zero()) return false;
  // Cyclotomic subgroup membership: g^{Phi_12(p)} = 1 with Phi_12(p) =
  // p^4 - p^2 + 1, i.e. g^{p^4} * g == g^{p^2} — two Frobenius maps and one
  // multiplication.
  Fp12 gp2 = g.frobenius2();
  Fp12 gp4 = gp2.frobenius2();
  if (!(gp4 * g == gp2)) return false;
  // Inside the cyclotomic subgroup the compressed squaring chain is valid,
  // so the order-r check costs ~254 Karabina compressed squarings.
  return g.cyclotomic_pow_compressed(ff::Fr::modulus()).is_one();
}

PairingCounters pairing_counters() {
  return {g_chains.load(std::memory_order_relaxed),
          g_final_exps.load(std::memory_order_relaxed)};
}

void reset_pairing_counters() {
  g_chains.store(0, std::memory_order_relaxed);
  g_final_exps.store(0, std::memory_order_relaxed);
}

}  // namespace dsaudit::pairing
