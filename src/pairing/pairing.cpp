#include "pairing/pairing.hpp"

#include <stdexcept>
#include <vector>

namespace dsaudit::pairing {

namespace {

using ff::Fp;
using ff::Fp2;
using ff::Fp6;
using bigint::u128;
using bigint::VarUInt;

/// Affine point on the twist (Fp2 coordinates), never infinity inside the
/// Miller loop for valid inputs of prime order r.
struct TwistPoint {
  Fp2 x, y;
};

/// A chord/tangent line through untwisted points, evaluated at P = (xp, yp):
///   l = yp - lambda' * xp * w + (lambda' * xT - yT) * w^3,
/// where lambda' is the slope on the twist. Kept sparse — the Miller loop
/// folds it in with Fp12::mul_by_line.
struct Line {
  Fp2 a, b, c;  // (a,0,0) + (b, c, 0) w
};

Line line_value(const Fp2& lambda, const TwistPoint& t, const Fp& xp, const Fp& yp) {
  return Line{Fp2{yp, Fp::zero()}, -(lambda.mul_fp(xp)), lambda * t.x - t.y};
}

/// Vertical line x = xT evaluated at P (used only in the degenerate
/// T.x == Q.x, T != Q addition case, which cannot occur for honest inputs
/// but must not crash on adversarial ones): l = xp - xT * w^2. Not sparse in
/// the Line shape, so returned as a full Fp12.
Fp12 vertical_line_value(const TwistPoint& t, const Fp& xp) {
  return Fp12{Fp6{Fp2{xp, Fp::zero()}, -t.x, Fp2::zero()}, Fp6::zero()};
}

/// Tangent step: returns the line through (T, T) at P and doubles T in place.
Line double_step(TwistPoint& t, const Fp& xp, const Fp& yp) {
  Fp2 x2 = t.x.square();
  Fp2 lambda = (x2 + x2 + x2) * (t.y.dbl()).inverse();
  Line l = line_value(lambda, t, xp, yp);
  Fp2 xr = lambda.square() - t.x.dbl();
  Fp2 yr = lambda * (t.x - xr) - t.y;
  t = {xr, yr};
  return l;
}

/// Chord step: returns the line through (T, Q) at P and sets T = T + Q.
/// Folds the chord line through (T, Q) into f and sets T = T + Q.
void add_step_into(Fp12& f, TwistPoint& t, const TwistPoint& q, const Fp& xp,
                   const Fp& yp) {
  if (t.x == q.x) {
    if (t.y == q.y) {
      Line l = double_step(t, xp, yp);
      f = f.mul_by_line(l.a, l.b, l.c);
      return;
    }
    // T + (-T): vertical line; for order-r inputs with the optimal-ate loop
    // count this is unreachable, but adversarial inputs must not crash.
    f = f * vertical_line_value(t, xp);
    t = {Fp2::zero(), Fp2::zero()};  // poisoned; loop ends immediately after
    return;
  }
  Fp2 lambda = (q.y - t.y) * (q.x - t.x).inverse();
  Line l = line_value(lambda, t, xp, yp);
  Fp2 xr = lambda.square() - t.x - q.x;
  Fp2 yr = lambda * (t.x - xr) - t.y;
  t = {xr, yr};
  f = f.mul_by_line(l.a, l.b, l.c);
}

TwistPoint to_twist_affine(const G2& q) {
  auto [x, y] = q.to_affine();
  return {x, y};
}

/// The optimal-ate loop count 6t + 2 (65 bits for BN254), derived from the
/// BN parameter rather than hard-coded.
std::vector<bool> six_t_plus_2_bits() {
  u128 v = static_cast<u128>(6) * ff::kBnParamT + 2;
  std::vector<bool> bits;
  while (v != 0) {
    bits.push_back((v & 1) != 0);
    v >>= 1;
  }
  return bits;  // little-endian
}

}  // namespace

Fp12 miller_loop(const G1& p, const G2& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();
  auto [xp, yp] = p.to_affine();
  TwistPoint qa = to_twist_affine(q);
  static const std::vector<bool> bits = six_t_plus_2_bits();

  Fp12 f = Fp12::one();
  TwistPoint t = qa;
  for (std::size_t i = bits.size() - 1; i-- > 0;) {
    f = f.square();
    Line l = double_step(t, xp, yp);
    f = f.mul_by_line(l.a, l.b, l.c);
    if (bits[i]) add_step_into(f, t, qa, xp, yp);
  }
  // Final two additions with the Frobenius images of Q.
  TwistPoint q1 = to_twist_affine(curve::g2_frobenius(q));
  TwistPoint q2 = to_twist_affine(-curve::g2_frobenius2(q));
  add_step_into(f, t, q1, xp, yp);
  add_step_into(f, t, q2, xp, yp);
  return f;
}

Fp12 final_exponentiation(const Fp12& f) {
  if (f.is_zero()) throw std::domain_error("final_exponentiation: zero input");
  // Easy part: f^{(p^6-1)(p^2+1)}.
  Fp12 t0 = f.conjugate() * f.inverse();       // f^{p^6 - 1}
  Fp12 elt = t0.frobenius_pow(2) * t0;         // ^{p^2 + 1}

  // Hard part: elt^{(p^4 - p^2 + 1)/r} via the Devegili et al. BN recipe
  // (the same structure as go-ethereum's bn256 finalExponentiation).
  const ff::u64 u = ff::kBnParamT;
  Fp12 fp = elt.frobenius();
  Fp12 fp2 = elt.frobenius_pow(2);
  Fp12 fp3 = fp2.frobenius();
  Fp12 fu = elt.pow_u64(u);
  Fp12 fu2 = fu.pow_u64(u);
  Fp12 fu3 = fu2.pow_u64(u);
  Fp12 y3 = fu.frobenius().conjugate();
  Fp12 fu2p = fu2.frobenius();
  Fp12 fu3p = fu3.frobenius();
  Fp12 y2 = fu2.frobenius_pow(2);
  Fp12 y0 = fp * fp2 * fp3;
  Fp12 y1 = elt.conjugate();
  Fp12 y5 = fu2.conjugate();
  Fp12 y4 = (fu * fu2p).conjugate();
  Fp12 y6 = (fu3 * fu3p).conjugate();
  Fp12 a = y6.square() * y4 * y5;
  Fp12 b = y3 * y5 * a;
  a = a * y2;
  b = (b.square() * a).square();
  a = b * y1;
  b = b * y0;
  a = a.square();
  return a * b;
}

Fp12 final_exponentiation_slow(const Fp12& f) {
  if (f.is_zero()) throw std::domain_error("final_exponentiation_slow: zero input");
  VarUInt p{Fp::modulus()};
  VarUInt e = VarUInt::pow(p, 12) - VarUInt{1};
  auto [q, rem] = VarUInt::divmod(e, VarUInt{ff::Fr::modulus()});
  if (!rem.is_zero()) throw std::logic_error("(p^12-1) not divisible by r");
  return ff::pow_var(f, q);
}

Fp12 pairing(const G1& p, const G2& q) {
  return final_exponentiation(miller_loop(p, q));
}

Fp12 multi_pairing(std::span<const std::pair<G1, G2>> pairs) {
  Fp12 f = Fp12::one();
  for (const auto& [p, q] : pairs) f *= miller_loop(p, q);
  return final_exponentiation(f);
}

bool pairing_product_is_one(std::span<const std::pair<G1, G2>> pairs) {
  return multi_pairing(pairs).is_one();
}

}  // namespace dsaudit::pairing
